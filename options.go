package dsmsim

import (
	"io"

	"dsmsim/internal/critpath"
	"dsmsim/internal/sweep"
)

// FaultVariant names one fault plan of a WithFaultGrid grid. A nil Plan is
// the healthy-machine member of the grid.
type FaultVariant = sweep.FaultVariant

// options collects everything the functional options can configure. Start
// and Sweep share one option vocabulary: the settings that describe a run
// (verification, fault plan, virtual-time limit, sampling, tracing) mean
// the same thing in both, and the rest apply to whichever call understands
// them and are ignored by the other.
type options struct {
	// Shared between Start and Sweep.
	verify       *bool
	faults       *FaultPlan
	limit        Time
	sampleEvery  Time
	shareProfile bool
	critPath     bool
	whatIf       *critpath.Scale
	// Single-run only: per-run event trace writers. Ignored by Sweep,
	// where parallel runs would interleave on one writer.
	trace     io.Writer
	traceJSON io.Writer
	// Sweep only.
	faultGrid  []FaultVariant
	fork       bool
	workers    int
	progress   io.Writer
	csv        io.Writer
	histograms bool
	sampleCSV  io.Writer
	profCSV    io.Writer
	critCSV    io.Writer
	metrics    *Metrics
}

// Option customizes a Start or Sweep call. All options are functional:
// pass any number to either entrypoint. Options that only apply to one of
// the two calls (tracing is per-run, parallelism is per-sweep) are
// silently ignored by the other.
type Option func(*options)

// collect folds opts into one options struct.
func collect(opts []Option) options {
	var c options
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// WithVerify enables result verification against the sequential
// reference. WithVerify() (no argument) turns verification on;
// WithVerify(false) forces it off. Without this option, Start runs
// unverified and Sweep verifies at Small size only (verification is slow
// at Paper size).
func WithVerify(v ...bool) Option {
	on := true
	if len(v) > 0 {
		on = v[0]
	}
	return func(c *options) { c.verify = &on }
}

// WithFaults applies a deterministic fault plan — seeded link drops,
// duplicates, delay jitter, timed partitions, straggler windows — to the
// run (Start) or to every non-sequential run of the sweep. Build plans
// with NewFaultPlan and the rule constructors (Drop, Partition,
// Straggler, …) or from a flag string with ParseFaults. A nil or inactive
// plan leaves the machine byte-identical to the fault-free one; the same
// plan (same FaultSeed) reproduces a run bit-for-bit.
func WithFaults(p *FaultPlan) Option { return func(c *options) { c.faults = p } }

// WithFaultGrid expands every matrix point of the sweep into one run per
// named fault variant (fault-sensitivity studies: the same configuration
// under "none", "lossy", "jittery", ... plans). Variant names must be
// unique and non-empty; a nil plan is the healthy-machine member. With a
// grid attached, the CSV, sample and profile schemas gain a trailing
// fault column, progress lines a f=<name> tag, and WithFaults is ignored
// for grid points. Sweep only.
func WithFaultGrid(variants ...FaultVariant) Option {
	return func(c *options) { c.faultGrid = variants }
}

// WithFork shares warmup prefixes across WithFaultGrid points: each group
// of runs differing only in the fault variant executes its pre-fault
// prefix once — to a checkpoint at the grid's earliest start barrier
// (plans gated with start=K are dormant before their K-th barrier) — and
// forks the checkpoint per variant. All output stays byte-identical to
// flat execution at any parallelism; points the checkpoint machinery
// cannot honor (non-barrier-structured app, ungated plan, sharing
// profiler attached) silently run flat. Sweep only; requires
// WithFaultGrid with at least two forkable variants to have any effect.
func WithFork() Option { return func(c *options) { c.fork = true } }

// WithLimit bounds each run's virtual time (0 keeps the generous
// default).
func WithLimit(t Time) Option { return func(c *options) { c.limit = t } }

// WithSampleEvery attaches the virtual-time metrics sampler,
// snapshotting per-interval deltas of the node counters. Sampling is
// strictly observational: results, progress lines and CSV records are
// unchanged. Each run's series is available as Result.Samples.
func WithSampleEvery(every Time) Option {
	return func(c *options) { c.sampleEvery = every }
}

// WithShareProfile attaches the sharing-pattern profiler to the run
// (Start) or to every non-sequential run of the sweep: each touched block
// is classified into the paper's sharing taxonomy (private, read-only,
// producer-consumer, migratory, write-shared) and every fault and
// invalidation attributed as cold, true sharing, false sharing or
// upgrade, aggregated over the application's named heap regions into
// Result.Sharing. Profiling is strictly observational: virtual time and
// every other Result field are byte-identical to an unprofiled run.
func WithShareProfile() Option { return func(c *options) { c.shareProfile = true } }

// WithProfCSV streams every run's sharing profile to w as CSV rows (one
// per region plus a total) prefixed with the run-key columns, in
// canonical sweep order — byte-identical at any parallelism. Sweep only;
// requires WithShareProfile.
func WithProfCSV(w io.Writer) Option { return func(c *options) { c.profCSV = w } }

// WithCritPath attaches the critical-path profiler to the run (Start) or
// to every non-sequential run of the sweep: the exact longest dependency
// chain of the execution is recovered — its segments sum to the run's
// completion time to the nanosecond — and attributed per component
// (compute, straggler dilation, runtime overhead, message wire, message
// service, lock wait, barrier wait, home forwarding, retransmission), per
// node and per heap region, into Result.CritPath. Profiling is strictly
// observational: virtual time and every other Result field are
// byte-identical to an unprofiled run.
func WithCritPath() Option { return func(c *options) { c.critPath = true } }

// WithCritCSV streams every run's critical-path component row to w,
// prefixed with the run-key columns, in canonical sweep order —
// byte-identical at any parallelism. Sweep only; requires WithCritPath.
func WithCritCSV(w io.Writer) Option { return func(c *options) { c.critCSV = w } }

// WithWhatIf rescales one cost class of the machine — compute, message
// wire latency, message service occupancy, lock traffic, barrier traffic
// — by the scale's factor and re-simulates exactly (COZ-style causal
// profiling, but with the true counterfactual executed rather than
// estimated). Compare the rescaled run's time against the baseline's
// CritPath.Predict to separate what the critical path predicts from what
// the full dependency structure delivers. Build scales with ParseWhatIf
// ("lock=0.5", "msg=0"). Applies to Start and to every non-sequential
// run of the sweep.
func WithWhatIf(s *CritScale) Option { return func(c *options) { c.whatIf = s } }

// WithTrace streams the run's deterministic line-format event log to w:
// every fault, synchronization operation, message send/service — and,
// under a fault plan, every wire drop, duplicate and retransmission —
// with virtual timestamps. Start only; ignored by Sweep.
func WithTrace(w io.Writer) Option { return func(c *options) { c.trace = w } }

// WithTraceJSON streams the same events as a Chrome trace-event JSON
// array (load in Perfetto or chrome://tracing). Start only; ignored by
// Sweep.
func WithTraceJSON(w io.Writer) Option { return func(c *options) { c.traceJSON = w } }

// WithParallelism bounds the sweep worker pool. n <= 0 (and the default)
// means one worker per available CPU (GOMAXPROCS); 1 recovers fully
// serial execution. Output is byte-identical at every setting.
func WithParallelism(n int) Option { return func(c *options) { c.workers = n } }

// WithProgress streams one line per completed run to w, in canonical
// sweep order regardless of completion order.
func WithProgress(w io.Writer) Option { return func(c *options) { c.progress = w } }

// WithCSV streams one machine-readable record per completed run to w. The
// header is written exactly once, and suppressed automatically when w is
// an append-mode file that already holds records.
func WithCSV(w io.Writer) Option { return func(c *options) { c.csv = w } }

// WithHistograms adds a latency-distribution summary line (fault service
// time, message latency, lock wait) after each run's progress line.
func WithHistograms() Option { return func(c *options) { c.histograms = true } }

// WithSampleCSV streams every run's sampler time-series to w as CSV rows
// prefixed with the run-key columns, in canonical sweep order — like all
// sweep output, byte-identical at any parallelism. Requires
// WithSampleEvery.
func WithSampleCSV(w io.Writer) Option { return func(c *options) { c.sampleCSV = w } }

// WithMetrics attaches a live metrics registry: the sweep reports point
// lifecycle and wall-clock runtimes to m (servable over HTTP with
// Metrics.Serve), and progress lines switch to an enriched format with a
// completion counter and per-run fault/traffic fields. Wall-clock data
// stays on the live surface only; deterministic outputs are unaffected.
func WithMetrics(m *Metrics) Option { return func(c *options) { c.metrics = m } }
