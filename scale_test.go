package dsmsim_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"

	"dsmsim"
)

// TestSweepCSVGolden proves the sparse-directory refactor left ≤64-node
// results byte-identical: a fresh sweep's CSV stream must match the
// checked-in golden generated before the representation change.
func TestSweepCSVGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/sweep_golden_16n.csv")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	_, err = dsmsim.Sweep(context.Background(), dsmsim.SweepSpec{
		Apps:          []string{"fft", "lu"},
		Granularities: []int{64, 4096},
		Nodes:         16,
		Size:          dsmsim.Small,
	}, dsmsim.WithCSV(&got))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("sweep CSV diverged from pre-refactor golden testdata/sweep_golden_16n.csv\ngot %d bytes, want %d bytes", got.Len(), len(want))
	}
}

// TestVerifiedSweep256 runs the full application suite under every
// protocol at 256 nodes / 4KB blocks with verification against the
// sequential reference — the headline scaling claim: node counts past the
// old 64-node ceiling work for every app/protocol pair, not just the
// benchmarked ones.
func TestVerifiedSweep256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node full-matrix sweep skipped in -short mode")
	}
	res, err := dsmsim.Sweep(context.Background(), dsmsim.SweepSpec{
		Granularities: []int{4096},
		Nodes:         256,
		Size:          dsmsim.Small,
	}, dsmsim.WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	apps := len(dsmsim.AppNames())
	want := apps * len(dsmsim.Protocols)
	n := 0
	for _, run := range res.Runs {
		if run.Point.Sequential {
			continue
		}
		n++
		if run.Result.Nodes != 256 {
			t.Fatalf("%s/%s ran on %d nodes", run.Point.App, run.Point.Protocol, run.Result.Nodes)
		}
	}
	if n != want {
		t.Fatalf("sweep completed %d runs, want %d (%d apps x %d protocols)", n, want, apps, len(dsmsim.Protocols))
	}
}

// TestVerified1024 runs FFT and LU at the new 1024-node bound under all
// three protocols, verified. This is the acceptance bar for lifting
// ErrBadNodes from 64 to 1024.
func TestVerified1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node verified runs skipped in -short mode")
	}
	for _, app := range []string{"fft", "lu"} {
		for _, proto := range dsmsim.Protocols {
			app, proto := app, proto
			t.Run(fmt.Sprintf("%s/%s", app, proto), func(t *testing.T) {
				t.Parallel()
				cfg := dsmsim.Config{Nodes: 1024, BlockSize: 4096, Protocol: proto}
				res, err := dsmsim.StartApp(context.Background(), cfg, app, dsmsim.Small, dsmsim.WithVerify())
				if err != nil {
					t.Fatal(err)
				}
				if res.Time <= 0 {
					t.Fatalf("run reported non-positive virtual time %v", res.Time)
				}
			})
		}
	}
}

// TestScaleFootprint256 pins the memory contract of the sparse directory:
// protocol metadata at 256 nodes must stay proportional to touched blocks
// plus a per-node term, never O(nodes x blocks). A dense per-node home
// cache or dense per-block sharer vectors would blow these ceilings by an
// order of magnitude.
func TestScaleFootprint256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node footprint check skipped in -short mode")
	}
	for _, proto := range dsmsim.Protocols {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			cfg := dsmsim.Config{Nodes: 256, BlockSize: 4096, Protocol: proto}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			res, err := dsmsim.StartApp(context.Background(), cfg, "fft", dsmsim.Small)
			runtime.ReadMemStats(&after)
			if err != nil {
				t.Fatal(err)
			}
			// Static protocol metadata: sparse tables for a Small FFT heap
			// measure well under 1 MB; 4 MB leaves headroom while a dense
			// nodes x blocks layout at 256 nodes lands far above it.
			const staticCeiling = 4 << 20
			if res.ProtoStaticBytes > staticCeiling {
				t.Errorf("ProtoStaticBytes = %d, ceiling %d", res.ProtoStaticBytes, staticCeiling)
			}
			// Whole-run allocation volume (simulation + metadata, excluding
			// GC reuse): generous 1 GB ceiling, an order of magnitude above
			// current behaviour, to catch reintroduced dense state.
			if delta := after.TotalAlloc - before.TotalAlloc; delta > 1<<30 {
				t.Errorf("run allocated %d bytes total, ceiling %d", delta, 1<<30)
			}
		})
	}
}
